(* Unit tests for the static-analysis framework's pure parts: the
   diagnostic sink (dedup, ordering, JSON round-trip, baseline
   fingerprints) and the spec-drift diff against the real Figure 4
   table from lib/check/spec.ml.

   NOTE: no [open] of project libraries — repro_analysis links
   compiler-libs, whose Types/Path/Location would shadow the
   project's. *)

module Diag = Repro_analysis.Diag
module Specdrift = Repro_analysis.Specdrift
module Footprint = Repro_analysis.Footprint
module Racecheck = Repro_analysis.Racecheck
module Globals = Repro_analysis.Globals
module Keyspace = Repro_analysis.Keyspace
module Loops = Repro_analysis.Loops
module Source = Repro_analysis.Source
module Spec = Repro_check.Spec

(* A location in a file that does not exist: Source.allowed finds no
   tag, so nothing is suppressed. *)
let loc ~file ~line ~col =
  let pos =
    {
      Lexing.pos_fname = file;
      pos_lnum = line;
      pos_bol = 0;
      pos_cnum = col;
    }
  in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = false }

let add sink ~rule ~file ~line ~col msg =
  Diag.add sink ~rule ~loc:(loc ~file ~line ~col) msg

(* --- the sink --------------------------------------------------------- *)

let test_dedup () =
  let sink = Diag.create_sink () in
  (* same (file, line, rule): one finding, whatever the column *)
  add sink ~rule:"r" ~file:"a.ml" ~line:3 ~col:1 "first";
  add sink ~rule:"r" ~file:"a.ml" ~line:3 ~col:9 "second";
  (* different rule on the same line: kept *)
  add sink ~rule:"s" ~file:"a.ml" ~line:3 ~col:1 "other rule";
  Alcotest.(check int) "two findings" 2 (List.length (Diag.to_list sink))

let test_order () =
  let sink = Diag.create_sink () in
  add sink ~rule:"r" ~file:"b.ml" ~line:1 ~col:0 "m";
  add sink ~rule:"r" ~file:"a.ml" ~line:9 ~col:0 "m";
  add sink ~rule:"s" ~file:"a.ml" ~line:2 ~col:5 "m";
  add sink ~rule:"r" ~file:"a.ml" ~line:2 ~col:1 "m";
  let got =
    List.map
      (fun d -> (d.Diag.d_file, d.Diag.d_line, d.Diag.d_col))
      (Diag.to_list sink)
  in
  Alcotest.(check (list (triple string int int)))
    "sorted by file, line, col"
    [ ("a.ml", 2, 1); ("a.ml", 2, 5); ("a.ml", 9, 0); ("b.ml", 1, 0) ]
    got

let test_json_roundtrip () =
  let sink = Diag.create_sink () in
  add sink ~rule:"no-poly-id-compare" ~file:"lib/x.ml" ~line:4 ~col:7
    "tricky \"quoted\"\nmessage\twith escapes";
  add sink ~rule:"spec-drift" ~file:"lib/y.ml" ~line:1 ~col:0 "plain";
  let diags = Diag.to_list sink in
  let parsed = Diag.parse_report (Diag.report_json diags) in
  Alcotest.(check int) "same count" (List.length diags) (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "rule" a.Diag.d_rule b.Diag.d_rule;
      Alcotest.(check string) "file" a.Diag.d_file b.Diag.d_file;
      Alcotest.(check int) "line" a.Diag.d_line b.Diag.d_line;
      Alcotest.(check int) "col" a.Diag.d_col b.Diag.d_col;
      Alcotest.(check string) "message" a.Diag.d_message b.Diag.d_message)
    diags parsed

let test_json_deterministic () =
  let sink = Diag.create_sink () in
  add sink ~rule:"r" ~file:"a.ml" ~line:1 ~col:0 "m";
  let diags = Diag.to_list sink in
  Alcotest.(check string)
    "byte-identical" (Diag.report_json diags) (Diag.report_json diags)

let test_baseline_ignores_line_moves () =
  let sink = Diag.create_sink () in
  add sink ~rule:"r" ~file:"a.ml" ~line:10 ~col:2 "grandfathered";
  let baseline = Diag.to_list sink in
  (* the same finding, shifted down 5 lines: still grandfathered *)
  let moved = Diag.create_sink () in
  add moved ~rule:"r" ~file:"a.ml" ~line:15 ~col:4 "grandfathered";
  Alcotest.(check int)
    "line move is not new" 0
    (List.length (Diag.new_findings ~baseline (Diag.to_list moved)));
  (* a different message is a new finding *)
  let fresh = Diag.create_sink () in
  add fresh ~rule:"r" ~file:"a.ml" ~line:10 ~col:2 "different";
  Alcotest.(check int)
    "message change is new" 1
    (List.length (Diag.new_findings ~baseline (Diag.to_list fresh)))

let test_json_render_parse_render_stable () =
  (* Render → parse → render must be byte-identical — the golden
     reports and the baseline can be regenerated from either side. *)
  let sink = Diag.create_sink () in
  add sink ~rule:"z-rule" ~file:"lib/z.ml" ~line:2 ~col:3 "last file first";
  add sink ~rule:"a-rule" ~file:"lib/a.ml" ~line:40 ~col:0
    "escapes: \"\\ \t and\nnewline";
  add sink ~rule:"m-rule" ~file:"lib/a.ml" ~line:4 ~col:12 "middle";
  let j1 = Diag.report_json (Diag.to_list sink) in
  let j2 = Diag.report_json (Diag.parse_report j1) in
  Alcotest.(check string) "byte-identical after round-trip" j1 j2

let test_baseline_survives_roundtrip () =
  (* A baseline written to JSON and parsed back grandfathers exactly
     what the in-memory baseline does: fingerprints survive the trip. *)
  let sink = Diag.create_sink () in
  add sink ~rule:"r" ~file:"a.ml" ~line:10 ~col:2 "known";
  add sink ~rule:"s" ~file:"b.ml" ~line:3 ~col:0 "also known";
  let baseline = Diag.to_list sink in
  let reparsed = Diag.parse_report (Diag.report_json baseline) in
  let current = Diag.create_sink () in
  add current ~rule:"r" ~file:"a.ml" ~line:22 ~col:7 "known";
  add current ~rule:"s" ~file:"b.ml" ~line:3 ~col:0 "also known";
  add current ~rule:"r" ~file:"a.ml" ~line:5 ~col:1 "genuinely new";
  let fresh = Diag.new_findings ~baseline:reparsed (Diag.to_list current) in
  Alcotest.(check (list string))
    "only the new finding survives" [ "genuinely new" ]
    (List.map (fun d -> d.Diag.d_message) fresh)

(* --- source-level suppression ----------------------------------------- *)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let test_allow_tag_suppresses () =
  (* The [(* repcheck: allow *)] tag suppresses on the flagged line and
     on the line above it, and nowhere else. *)
  let path = Filename.temp_file "repcheck_supp" ".ml" in
  write_lines path
    [
      "let untagged = 1";
      "(* repcheck: allow — justified *)";
      "let tagged_above = 2";
      "let tagged_inline = 3 (* repcheck: allow *)";
      "let shadowed = 4";
      "let clean = 5";
    ];
  let allowed line = Source.allowed (loc ~file:path ~line ~col:0) in
  Alcotest.(check bool) "plain line is not suppressed" false (allowed 1);
  Alcotest.(check bool) "tag on the previous line covers" true (allowed 3);
  Alcotest.(check bool) "inline tag covers" true (allowed 4);
  Alcotest.(check bool) "inline tag covers one line down" true (allowed 5);
  Alcotest.(check bool) "tag reaches no further" false (allowed 6);
  Sys.remove path

(* --- key-space abstract domain ---------------------------------------- *)

let abs_t =
  Alcotest.testable
    (fun ppf a -> Format.pp_print_string ppf (Keyspace.to_string a))
    Keyspace.equal_abs

let test_keyspace_concat () =
  let open Keyspace in
  Alcotest.(check abs_t) "constants fuse" (Const "ab")
    (concat (Const "a") (Const "b"));
  Alcotest.(check abs_t) "empty constant drops" (Param 0)
    (concat (Const "") (Param 0));
  Alcotest.(check abs_t) "nested concats flatten"
    (Concat [ Const "a-"; Param 0; Const "-b" ])
    (concat (concat (Const "a-") (Param 0)) (Const "-b"));
  Alcotest.(check abs_t) "top poisons" Top (concat (Param 0) Top)

let test_keyspace_sets () =
  let open Keyspace in
  Alcotest.(check (list abs_t))
    "union sorts and dedups"
    [ Const "x"; Param 0 ]
    (union [ Param 0; Const "x" ] [ Const "x" ]);
  Alcotest.(check (list abs_t))
    "top absorbs the set" [ Top ]
    (add Top [ Const "x"; Param 0 ]);
  Alcotest.(check (list abs_t))
    "widening past the cardinality bound" [ Top ]
    (normalize (List.init (widen_limit + 1) (fun i -> Const (string_of_int i))))

let test_keyspace_subst () =
  let open Keyspace in
  Alcotest.(check abs_t) "actual replaces the parameter" (Const "k")
    (subst [ Const "k" ] (Param 0));
  Alcotest.(check abs_t) "missing actual degrades to top" Top
    (subst [] (Param 1));
  Alcotest.(check abs_t) "substitution under concat"
    (Concat [ Const "a-"; Param 2 ])
    (subst [ Param 2 ] (Concat [ Const "a-"; Param 0 ]));
  Alcotest.(check abs_t) "constant actual refolds the concat" (Const "a-x")
    (subst [ Const "x" ] (Concat [ Const "a-"; Param 0 ]))

let test_keyspace_covers () =
  let open Keyspace in
  Alcotest.(check bool) "top covers everything" true (covers [ Top ] (Param 3));
  Alcotest.(check bool) "membership covers" true
    (covers [ Const "x"; Param 0 ] (Param 0));
  Alcotest.(check bool) "no match, no cover" false
    (covers [ Param 0 ] (Param 1))

(* --- spec drift over the real Figure 4 table -------------------------- *)

let all_states = List.map Spec.state_name Spec.all_states

let spec_pairs =
  Specdrift.expand_spec ~all_states
    (List.map
       (fun (from_, target) ->
         (Option.map Spec.state_name from_, Spec.state_name target))
       Spec.edges)

let test_drift_clean () =
  (* code that takes exactly the specified transitions: empty diff *)
  let code_only, spec_only = Specdrift.diff ~spec_pairs ~code_pairs:spec_pairs in
  Alcotest.(check (list (pair string string))) "no code-only" [] code_only;
  Alcotest.(check (list (pair string string))) "no spec-only" [] spec_only

let test_drift_extra_transition () =
  (* a synthetic transition the engine never takes and Figure 4 does
     not have: it must surface as code-only drift, and nothing else *)
  let rogue = ("Non_prim", "Reg_prim") in
  assert (not (List.mem rogue spec_pairs));
  let code_only, spec_only =
    Specdrift.diff ~spec_pairs ~code_pairs:(rogue :: spec_pairs)
  in
  Alcotest.(check (list (pair string string)))
    "the rogue edge" [ rogue ] code_only;
  Alcotest.(check (list (pair string string))) "no spec-only" [] spec_only

let test_drift_missing_transition () =
  (* drop one specified edge from the code side: spec-only drift *)
  let dropped = ("Construct", "Reg_prim") in
  assert (List.mem dropped spec_pairs);
  let code_pairs = List.filter (fun e -> e <> dropped) spec_pairs in
  let code_only, spec_only = Specdrift.diff ~spec_pairs ~code_pairs in
  Alcotest.(check (list (pair string string))) "no code-only" [] code_only;
  Alcotest.(check (list (pair string string)))
    "the dropped edge" [ dropped ] spec_only

let test_expand_wildcard () =
  (* a None source expands to every state *)
  let pairs = Specdrift.expand_spec ~all_states [ (None, "Exchange_states") ] in
  Alcotest.(check int) "8 edges" (List.length all_states) (List.length pairs);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s ^ " -> Exchange_states") true
        (List.mem (s, "Exchange_states") pairs))
    all_states

(* --- footprint fixpoint (pure solve over synthetic graphs) ------------ *)

let cell t f = { Footprint.c_type = t; c_field = f }

let access ?(tokens = []) ~write c =
  {
    Footprint.a_cell = c;
    a_write = write;
    a_tokens = tokens;
    a_loc = loc ~file:"synthetic.ml" ~line:1 ~col:0;
  }

let entry_list summaries key =
  List.map
    (fun ((c, w), tokens) -> ((c.Footprint.c_type, c.Footprint.c_field, w), tokens))
    (Footprint.entries summaries key)

let centry = Alcotest.(pair (triple string string bool) (list string))

let test_footprint_propagation () =
  (* f writes t.f under lock "l"; g calls f; h calls g: the write and
     its token reach both callers through the chain. *)
  let c = cell "t" "f" in
  let direct = [ ("f", [ access ~tokens:[ "l" ] ~write:true c ]) ] in
  let edges =
    [
      ("g", [ { Footprint.e_callee = "f"; e_tokens = [] } ]);
      ("h", [ { Footprint.e_callee = "g"; e_tokens = [] } ]);
    ]
  in
  let s = Footprint.solve ~direct ~edges in
  Alcotest.(check (list centry))
    "h inherits the guarded write"
    [ (("t", "f", true), [ "l" ]) ]
    (entry_list s "h")

let test_footprint_token_intersection () =
  (* The same write reached guarded on one path and bare on another:
     only tokens held on EVERY path survive. *)
  let c = cell "t" "f" in
  let direct =
    [
      ("guarded", [ access ~tokens:[ "l" ] ~write:true c ]);
      ("bare", [ access ~write:true c ]);
    ]
  in
  let edges =
    [
      ("caller",
       [
         { Footprint.e_callee = "guarded"; e_tokens = [] };
         { Footprint.e_callee = "bare"; e_tokens = [] };
       ]);
    ]
  in
  let s = Footprint.solve ~direct ~edges in
  Alcotest.(check (list centry))
    "intersection is empty"
    [ (("t", "f", true), []) ]
    (entry_list s "caller")

let test_footprint_cycle_converges () =
  (* Mutual recursion plus a self-loop: the fixpoint must terminate and
     both parties must carry the callee's footprint. *)
  let c = cell "t" "f" in
  let direct = [ ("leaf", [ access ~tokens:[ "l" ] ~write:true c ]) ] in
  let edges =
    [
      ("ping",
       [
         { Footprint.e_callee = "pong"; e_tokens = [] };
         { Footprint.e_callee = "ping"; e_tokens = [] };
       ]);
      ("pong",
       [
         { Footprint.e_callee = "ping"; e_tokens = [] };
         { Footprint.e_callee = "leaf"; e_tokens = [ "m" ] };
       ]);
    ]
  in
  let s = Footprint.solve ~direct ~edges in
  Alcotest.(check (list centry))
    "pong holds both tokens"
    [ (("t", "f", true), [ "l"; "m" ]) ]
    (entry_list s "pong");
  Alcotest.(check (list centry))
    "ping inherits through the cycle"
    [ (("t", "f", true), [ "l"; "m" ]) ]
    (entry_list s "ping")

(* --- race pairing ------------------------------------------------------ *)

let conflict = Alcotest.(pair (pair string string) bool)

let as_pairs l =
  List.map
    (fun ((c : Footprint.cell), ww) ->
      ((c.Footprint.c_type, c.Footprint.c_field), ww))
    l

let test_race_write_write () =
  let e c w tokens = ((c, w), tokens) in
  let c = cell "t" "f" in
  Alcotest.(check (list conflict))
    "bare writes conflict"
    [ (("t", "f"), true) ]
    (as_pairs
       (Racecheck.conflict_cells ~self:false
          [ e c true [] ]
          [ e c true [] ]));
  Alcotest.(check (list conflict))
    "a common token synchronizes"
    []
    (as_pairs
       (Racecheck.conflict_cells ~self:false
          [ e c true [ "l" ] ]
          [ e c true [ "l"; "m" ] ]));
  Alcotest.(check (list conflict))
    "disjoint locks do not"
    [ (("t", "f"), true) ]
    (as_pairs
       (Racecheck.conflict_cells ~self:false
          [ e c true [ "l" ] ]
          [ e c true [ "m" ] ]));
  Alcotest.(check (list conflict))
    "read/read is no conflict" []
    (as_pairs
       (Racecheck.conflict_cells ~self:false
          [ e c false [] ]
          [ e c false [] ]));
  Alcotest.(check (list conflict))
    "read/write is, and write/write wins the dedup"
    [ (("t", "f"), true) ]
    (as_pairs
       (Racecheck.conflict_cells ~self:false
          [ e c false []; e c true [] ]
          [ e c true [] ]))

let test_race_self_pairing () =
  let e c w tokens = ((c, w), tokens) in
  let c = cell "t" "f" in
  let s = [ e c true [] ] in
  Alcotest.(check (list conflict))
    "a multi root's bare write races with itself"
    [ (("t", "f"), true) ]
    (as_pairs (Racecheck.conflict_cells ~self:true s s));
  let guarded = [ e c true [ "l" ] ] in
  Alcotest.(check (list conflict))
    "its lock covers both instances" []
    (as_pairs (Racecheck.conflict_cells ~self:true guarded guarded))

(* --- suppression bookkeeping ------------------------------------------ *)

let test_stale_suppressions () =
  let l = loc ~file:"x.ml" ~line:1 ~col:0 in
  let annotated = [ ("U.cache", l); ("U.pure_helper", l) ] in
  Alcotest.(check (list string))
    "only the unflagged annotation is stale" [ "U.pure_helper" ]
    (List.map fst
       (Globals.stale_suppressions ~annotated ~flagged:[ "U.cache" ]))

(* --- the cost lattice and budget grammar ------------------------------ *)

let test_cost_lattice () =
  let module L = Loops in
  Alcotest.(check int)
    "join is union" (L.batch lor L.queue) (L.join L.batch L.queue);
  Alcotest.(check bool) "top absorbs" true (L.is_top (L.join L.members L.top));
  Alcotest.(check bool) "subset fits" true (L.fits L.batch (L.batch lor L.queue));
  Alcotest.(check bool)
    "superset does not fit" false
    (L.fits (L.batch lor L.members) L.batch);
  Alcotest.(check bool)
    "constant allocation is always tolerated" true
    (L.fits (L.queue lor L.alloc_const) L.queue);
  Alcotest.(check bool) "top fits nothing" false (L.fits L.top L.top);
  Alcotest.(check string) "rendering order" "O(batch+members+queue+log)"
    (L.to_string (L.batch lor L.members lor L.queue lor L.log_bound));
  Alcotest.(check string) "empty set renders O(1)" "O(1)" (L.to_string L.const)

let test_cost_budget_grammar () =
  let module L = Loops in
  let budget = Alcotest.(option (pair int int)) in
  Alcotest.(check budget)
    "work-only budget bounds allocation too"
    (Some (L.batch lor L.members, L.batch lor L.members))
    (L.parse_budget "O(batch+members)");
  Alcotest.(check budget)
    "explicit alloc clause"
    (Some (L.queue, L.const))
    (L.parse_budget "O(queue); alloc O(1)");
  Alcotest.(check budget)
    "spaces are insignificant"
    (Some (L.batch, L.const))
    (L.parse_budget " O( batch ) ; alloc O( 1 ) ");
  Alcotest.(check budget) "unknown class rejected" None
    (L.parse_budget "O(n)");
  Alcotest.(check budget) "top is not spellable" None (L.parse_budget "O(top)");
  Alcotest.(check budget) "missing O() rejected" None (L.parse_budget "batch");
  Alcotest.(check budget) "trailing clause rejected" None
    (L.parse_budget "O(1); alloc O(1); alloc O(1)")

let test_cost_type_markers () =
  let module L = Loops in
  let cls = Alcotest.(option int) in
  Alcotest.(check cls) "membership type" (Some L.members)
    (L.classify_names [ "list"; "Node_id.t" ]);
  Alcotest.(check cls) "queue type wins over members"
    (Some L.queue)
    (L.classify_names [ "list"; "Node_id.t"; "Action.Id.t" ]);
  Alcotest.(check cls) "log frames" (Some L.log_bound)
    (L.classify_names [ "array"; "Wlog.frame" ]);
  Alcotest.(check cls) "unmarked type" None
    (L.classify_names [ "list"; "string" ])

let test_stale_trusted () =
  let refs = function
    | "root" -> [ "a"; "b" ]
    | "a" -> [ "waived"; "root" ] (* cycle back to the root *)
    | _ -> []
  in
  Alcotest.(check (list string))
    "only the unreachable waiver is stale" [ "orphan" ]
    (Loops.stale_trusted ~roots:[ "root" ] ~refs
       ~trusted:[ "waived"; "orphan" ])

let test_stale_baseline () =
  let sink = Diag.create_sink () in
  add sink ~rule:"hotpath-cost" ~file:"a.ml" ~line:3 ~col:0 "still here";
  let current = Diag.to_list sink in
  let gone =
    { (List.hd current) with Diag.d_rule = "hotpath-alloc"; d_message = "fixed" }
  in
  Alcotest.(check (list string))
    "only the entry with no current match is stale" [ "fixed" ]
    (List.map
       (fun d -> d.Diag.d_message)
       (Diag.stale_baseline ~baseline:(gone :: current) current));
  (* fingerprints carry no line number: a moved finding is not stale *)
  let moved = { (List.hd current) with Diag.d_line = 99 } in
  Alcotest.(check int) "line moves do not strand the baseline" 0
    (List.length (Diag.stale_baseline ~baseline:[ moved ] current))

let () =
  Alcotest.run "analysis"
    [
      ( "diag",
        [
          Alcotest.test_case "dedup by (file, line, rule)" `Quick test_dedup;
          Alcotest.test_case "total order" `Quick test_order;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "json deterministic" `Quick
            test_json_deterministic;
          Alcotest.test_case "baseline fingerprint" `Quick
            test_baseline_ignores_line_moves;
          Alcotest.test_case "render-parse-render stable" `Quick
            test_json_render_parse_render_stable;
          Alcotest.test_case "baseline survives round-trip" `Quick
            test_baseline_survives_roundtrip;
        ] );
      ( "suppression-tags",
        [
          Alcotest.test_case "allow tag scope" `Quick test_allow_tag_suppresses;
        ] );
      ( "keyspace",
        [
          Alcotest.test_case "concat normalization" `Quick test_keyspace_concat;
          Alcotest.test_case "set lattice" `Quick test_keyspace_sets;
          Alcotest.test_case "substitution" `Quick test_keyspace_subst;
          Alcotest.test_case "coverage" `Quick test_keyspace_covers;
        ] );
      ( "specdrift",
        [
          Alcotest.test_case "clean diff" `Quick test_drift_clean;
          Alcotest.test_case "extra transition is code-only drift" `Quick
            test_drift_extra_transition;
          Alcotest.test_case "dropped transition is spec-only drift" `Quick
            test_drift_missing_transition;
          Alcotest.test_case "wildcard source expands" `Quick
            test_expand_wildcard;
        ] );
      ( "footprint",
        [
          Alcotest.test_case "propagation along calls" `Quick
            test_footprint_propagation;
          Alcotest.test_case "token sets intersect across paths" `Quick
            test_footprint_token_intersection;
          Alcotest.test_case "cyclic graphs converge" `Quick
            test_footprint_cycle_converges;
        ] );
      ( "racecheck",
        [
          Alcotest.test_case "pairing and locks" `Quick test_race_write_write;
          Alcotest.test_case "self pairing of multi roots" `Quick
            test_race_self_pairing;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "stale exemptions surface" `Quick
            test_stale_suppressions;
        ] );
      ( "cost",
        [
          Alcotest.test_case "summary lattice" `Quick test_cost_lattice;
          Alcotest.test_case "budget grammar" `Quick test_cost_budget_grammar;
          Alcotest.test_case "type markers" `Quick test_cost_type_markers;
          Alcotest.test_case "stale hotpath waivers" `Quick test_stale_trusted;
          Alcotest.test_case "stale baseline fingerprints" `Quick
            test_stale_baseline;
        ] );
    ]
