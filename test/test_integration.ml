(* Integration scenarios: the hard corners of the paper's algorithm —
   view changes interrupting the Construct phase (the No/Un paths),
   crashes while vulnerable, joins under partitions, sponsor failure
   mid-transfer, staggered recovery after a total crash. *)

open Repro_net
open Repro_db
open Repro_core
open Repro_harness

module Check = Repro_check

let run = World.run

(* Every scenario runs under a repcheck invariant monitor (the online
   checker of the paper's safety lemmas): zero violations across the
   whole run is part of each test's assertion. *)
let make_world ?quorum_policy ~seed ~n () =
  let w = World.make ?quorum_policy ~seed ~n () in
  let mon = World.attach_monitor w in
  (w, mon)

let repcheck_ok mon =
  Check.Monitor.check_now mon;
  Alcotest.(check bool) "monitor observed the run" true
    (Check.Monitor.observations mon > 0);
  if not (Check.Monitor.ok mon) then
    Alcotest.failf "%s" (Format.asprintf "%t" (Check.Monitor.report mon))

(* Step the world in small increments until a predicate holds. *)
let run_until ?(step_ms = 2.) ?(max_ms = 20_000.) w predicate =
  let steps = int_of_float (max_ms /. step_ms) in
  let rec go i =
    if predicate () then true
    else if i >= steps then false
    else begin
      run w ~ms:step_ms;
      go (i + 1)
    end
  in
  go 0

let submit_ok w node key v = World.submit_update w ~node ~key v

let all_consistent ?(converged = false) w =
  match Consistency.check_all ~converged (World.replicas w) with
  | [] -> ()
  | violations ->
    Alcotest.failf "violations: %s"
      (String.concat "; "
         (List.map
            (fun v -> Format.asprintf "%a" Consistency.pp_violation v)
            violations))

(* ------------------------------------------------------------------ *)

(* Cut the network at the exact moment a replica is constructing the new
   primary component: the paper's No/Un states.  Whatever interleaving
   results, safety must hold and the system must re-converge. *)
let test_partition_during_construct () =
  let w, mon = make_world ~seed:33 ~n:5 () in
  run w ~ms:1000.;
  (* Force an exchange by a partition+merge, and catch Construct. *)
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  run w ~ms:1500.;
  Topology.merge_all (World.topology w);
  let in_construct () =
    List.exists
      (fun r -> Replica.state r = Types.Construct)
      (World.replicas w)
  in
  let caught = run_until ~step_ms:0.5 ~max_ms:5_000. w in_construct in
  if caught then begin
    (* Cut right through the installation attempt.  The majority may
       legitimately *block* here: if the detached member might have
       received every CPC safely and installed, the others stay
       vulnerable until it returns (the algorithm's safety bias) — so we
       assert only safety, and full recovery after the heal below. *)
    Topology.partition (World.topology w) [ [ 0; 1; 2; 3 ]; [ 4 ] ];
    run w ~ms:2000.;
    all_consistent w
  end;
  Topology.merge_all (World.topology w);
  run w ~ms:4000.;
  all_consistent ~converged:true w;
  Alcotest.(check bool) "everyone back in primary" true
    (List.for_all Replica.in_primary (World.replicas w));
  repcheck_ok mon

(* Crash a server in the middle of the Create-Primary-Component round:
   it is vulnerable on disk.  On recovery it must not claim knowledge it
   does not have, and the system must converge. *)
let test_crash_while_vulnerable () =
  let w, mon = make_world ~seed:44 ~n:5 () in
  run w ~ms:1000.;
  submit_ok w 0 "pre" 1;
  run w ~ms:500.;
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  run w ~ms:1500.;
  Topology.merge_all (World.topology w);
  let victim = ref None in
  let in_construct () =
    match
      List.find_opt
        (fun r -> Replica.state r = Types.Construct)
        (World.replicas w)
    with
    | Some r ->
      victim := Some r;
      true
    | None -> false
  in
  let caught = run_until ~step_ms:0.5 ~max_ms:5_000. w in_construct in
  (match (caught, !victim) with
  | true, Some r ->
    Alcotest.(check bool) "vulnerable while constructing" true
      (Engine.vulnerable (Replica.engine r)).Types.v_valid;
    Replica.crash r;
    run w ~ms:3000.;
    all_consistent w;
    Replica.recover r;
    run w ~ms:4000.;
    all_consistent ~converged:true w;
    Alcotest.(check bool) "recovered and in primary" true (Replica.in_primary r)
  | _ ->
    (* Timing did not produce a Construct window: still verify health. *)
    run w ~ms:4000.;
    all_consistent ~converged:true w);
  repcheck_ok mon

let test_total_crash_staggered_recovery () =
  let w, mon = make_world ~seed:55 ~n:4 () in
  run w ~ms:1000.;
  for i = 1 to 8 do
    submit_ok w (i mod 4) (Printf.sprintf "k%d" i) i
  done;
  run w ~ms:800.;
  List.iter Replica.crash (World.replicas w);
  run w ~ms:500.;
  (* Recover one at a time with gaps: singletons and pairs must never
     form a primary while members of the last one are still down and
     potentially more knowledgeable. *)
  Replica.recover (World.replica w 0);
  run w ~ms:1500.;
  Alcotest.(check bool) "lone survivor holds no primary" false
    (Replica.in_primary (World.replica w 0));
  Replica.recover (World.replica w 1);
  run w ~ms:1500.;
  Replica.recover (World.replica w 2);
  Replica.recover (World.replica w 3);
  run w ~ms:4000.;
  all_consistent ~converged:true w;
  Alcotest.(check bool) "primary re-formed with everyone" true
    (List.for_all Replica.in_primary (World.replicas w));
  Alcotest.(check bool) "durable actions survived" true
    (Engine.green_count (Replica.engine (World.replica w 0)) >= 8);
  repcheck_ok mon

(* A new replica whose sponsor sits in a minority component: the
   PERSISTENT_JOIN can only turn green after the heal — the joiner waits
   and then completes (the paper's "accepted into the system without
   ever being connected to the primary component" flexibility). *)
let test_join_via_minority_sponsor () =
  let w, mon = make_world ~seed:66 ~n:5 () in
  run w ~ms:1000.;
  submit_ok w 0 "base" 1;
  run w ~ms:500.;
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  run w ~ms:1500.;
  (* Node 9 appears inside the minority component, sponsored by 4. *)
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  let joiner = World.add_joiner w ~node:9 ~sponsors:[ 4 ] in
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4; 9 ] ];
  run w ~ms:3000.;
  Alcotest.(check bool) "join blocked while sponsor lacks the primary" false
    (Replica.is_ready joiner);
  Topology.merge_all (World.topology w);
  run w ~ms:6000.;
  Alcotest.(check bool) "joiner completed after the heal" true
    (Replica.is_ready joiner);
  all_consistent ~converged:true w;
  Alcotest.(check bool) "joiner known cluster-wide" true
    (List.for_all
       (fun r -> Node_id.Set.mem 9 (Engine.known_servers (Replica.engine r)))
       (World.replicas w));
  repcheck_ok mon

let test_sponsor_crash_mid_join () =
  let w, mon = make_world ~seed:77 ~n:3 () in
  run w ~ms:1000.;
  for i = 1 to 10 do
    submit_ok w (i mod 3) (Printf.sprintf "k%d" i) i
  done;
  run w ~ms:500.;
  (* The first sponsor dies immediately; the joiner's retry loop must
     fall through to the second sponsor. *)
  Replica.crash (World.replica w 1);
  let joiner = World.add_joiner w ~node:8 ~sponsors:[ 1; 2 ] in
  run w ~ms:6000.;
  Alcotest.(check bool) "joined via the backup sponsor" true
    (Replica.is_ready joiner);
  Replica.recover (World.replica w 1);
  run w ~ms:3000.;
  all_consistent ~converged:true w;
  repcheck_ok mon

(* A large database is transferred in chunks; the representative dies
   mid-stream and the joiner resumes from a *different* sponsor without
   re-fetching the chunks it already holds (determinism makes snapshots
   at the same green position identical across replicas). *)
let test_chunked_transfer_resumes_across_sponsors () =
  let w, mon = make_world ~seed:123 ~n:3 () in
  run w ~ms:1000.;
  (* ~3 MB of state: several dozen 64 KiB transfer chunks. *)
  let blob = String.make 4096 'x' in
  for i = 1 to 700 do
    Replica.submit (World.replica w (i mod 3))
      (Action.Update [ Op.Set (Printf.sprintf "blob%d" i, Value.Text blob) ])
      ~on_response:(fun _ -> ())
  done;
  run w ~ms:3000.;
  let joiner = World.add_joiner w ~node:9 ~sponsors:[ 1; 2 ] in
  (* Let sponsor 1 order the join and start streaming, then kill it while
     chunks are still in flight. *)
  (* Let most of the stream through before the crash so the resumed tail
     is clearly smaller than a restart. *)
  let sponsor_started () = Replica.transfer_chunks_sent (World.replica w 1) > 30 in
  Alcotest.(check bool) "sponsor began streaming" true
    (run_until ~step_ms:1. w sponsor_started);
  Alcotest.(check bool) "transfer incomplete at crash" false
    (Replica.is_ready joiner);
  Replica.crash (World.replica w 1);
  run w ~ms:4000.;
  Alcotest.(check bool) "joiner completed via backup sponsor" true
    (Replica.is_ready joiner);
  (* The backup served only the tail: strictly fewer chunks than the
     whole snapshot needs. *)
  let s1 = Replica.transfer_chunks_sent (World.replica w 1)
  and s2 = Replica.transfer_chunks_sent (World.replica w 2) in
  Alcotest.(check bool)
    (Printf.sprintf "resume skipped received chunks (s1=%d s2=%d)" s1 s2)
    true
    (s2 < s1 + s2 && s2 > 0 && s1 > 3);
  Alcotest.(check bool) "backup sent fewer than a full restart" true (s2 < s1);
  Replica.recover (World.replica w 1);
  run w ~ms:3000.;
  all_consistent ~converged:true w;
  repcheck_ok mon

let test_repeated_partitions_converge () =
  let w, mon = make_world ~seed:88 ~n:5 () in
  run w ~ms:1000.;
  let key = ref 0 in
  let churn groups =
    Topology.partition (World.topology w) groups;
    for _ = 1 to 5 do
      incr key;
      submit_ok w (!key mod 5) (Printf.sprintf "c%d" !key) !key
    done;
    run w ~ms:1200.;
    all_consistent w
  in
  churn [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  churn [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  churn [ [ 0; 4 ]; [ 1; 2 ]; [ 3 ] ];
  churn [ [ 0; 1; 2; 3; 4 ] ];
  World.heal_and_settle ~ms:6000. w;
  all_consistent ~converged:true w;
  Alcotest.(check bool) "every submitted action eventually committed" true
    (Engine.green_count (Replica.engine (World.replica w 0)) >= 20);
  repcheck_ok mon

let test_join_then_leave_then_partition () =
  let w, mon = make_world ~seed:99 ~n:3 () in
  run w ~ms:1000.;
  submit_ok w 0 "a" 1;
  run w ~ms:300.;
  let joiner = World.add_joiner w ~node:6 ~sponsors:[ 0 ] in
  run w ~ms:4000.;
  Alcotest.(check bool) "joined" true (Replica.is_ready joiner);
  (* Old member leaves; the joiner keeps the cluster at quorum strength. *)
  Replica.leave (World.replica w 2);
  run w ~ms:2000.;
  Topology.partition (World.topology w) [ [ 0; 6 ]; [ 1 ]; [ 2 ] ];
  run w ~ms:1500.;
  Alcotest.(check bool) "pair with tie-break holds primary" true
    (Replica.in_primary (World.replica w 0) && Replica.in_primary joiner);
  Topology.merge_all (World.topology w);
  run w ~ms:3000.;
  all_consistent w;
  repcheck_ok mon

let test_fifo_order_per_client () =
  let w, mon = make_world ~seed:111 ~n:3 () in
  run w ~ms:1000.;
  (* Burst of sequential actions from one replica: FIFO must hold in the
     green order. *)
  for i = 1 to 20 do
    submit_ok w 0 "counter" i
  done;
  run w ~ms:1500.;
  let greens = Engine.green_actions (Replica.engine (World.replica w 1)) in
  let indices_of_0 =
    List.filter_map
      (fun a ->
        if Node_id.equal a.Action.id.Action.Id.server 0 then
          Some a.Action.id.Action.Id.index
        else None)
      greens
  in
  Alcotest.(check (list int)) "fifo per creator" (List.init 20 (fun i -> i + 1))
    indices_of_0;
  (* The last write wins in the database. *)
  (match Replica.weak_query (World.replica w 2) [ "counter" ] with
  | [ (_, Some (Value.Int 20)) ] -> ()
  | _ -> Alcotest.fail "final value must be the last write");
  repcheck_ok mon

(* A submission batch spanning a checkpoint: with end-to-end batching
   on and a tight checkpoint cadence, one burst of submissions is
   framed together while the apply side cuts a checkpoint (and
   compacts the log) in the middle of it.  The framing must not tear:
   the submitter crashes afterwards, recovers from the checkpointed
   log, and everything converges. *)
let test_batch_spans_checkpoint () =
  let w =
    World.make ~seed:58 ~checkpoint_every:(Some 8)
      ~submit_delay:(Repro_sim.Time.of_us 200) ~n:3 ()
  in
  let mon = World.attach_monitor w in
  run w ~ms:1000.;
  (* One instantaneous burst of 30 updates from a single node: with a
     200 us submission window they are framed into batches, and with a
     checkpoint every 8 greens the burst straddles several checkpoint
     boundaries. *)
  for i = 1 to 30 do
    World.submit_update w ~node:0 ~key:(Printf.sprintf "k%d" (i mod 7)) i
  done;
  run w ~ms:3000.;
  let submitter = World.replica w 0 in
  let stats = Engine.stats (Replica.engine submitter) in
  Alcotest.(check bool) "submissions were actually batched" true
    (stats.Engine.s_batched_submissions > stats.Engine.s_submit_batches);
  Alcotest.(check int) "all 30 applied everywhere" 30
    (List.fold_left
       (fun acc r -> min acc (Replica.greens_applied r))
       max_int (World.replicas w));
  (* Checkpoints compacted the log: nowhere near 30 actions x ~2
     records each. *)
  Alcotest.(check bool) "checkpointing compacted the log" true
    (Replica.log_entries submitter < 40);
  Replica.crash submitter;
  run w ~ms:500.;
  World.heal_and_settle ~ms:5000. w;
  all_consistent ~converged:true w;
  repcheck_ok mon

(* Two whole engine worlds in one process must be invisible to each
   other: tenant A registers a custom stored procedure on its replicas
   only, and tenant B — running concurrently in the same process — must
   abort the same action.  This is the multi-tenant isolation the
   instance-scoped procedure registry (and the ambient-state analysis
   guarding it) exists for; with the old process-wide registry, B would
   observe A's registration and commit. *)
let test_two_tenants_isolated () =
  let wa, mon_a = make_world ~seed:5 ~n:3 () in
  let wb, mon_b = make_world ~seed:6 ~n:3 () in
  List.iter
    (fun r ->
      Replica.register_procedure r "tenant_only" (fun _db _args ->
          { Procedure.updates = [ Op.Set ("mark", Value.Int 1) ];
            output = Value.Int 7 }))
    (World.replicas wa);
  run wa ~ms:2000.;
  run wb ~ms:2000.;
  let call w =
    let got = ref None in
    Replica.submit (World.replica w 0)
      (Action.Active { proc = "tenant_only"; args = [] })
      ~on_response:(fun r -> got := Some r);
    let answered = run_until ~max_ms:10_000. w (fun () -> !got <> None) in
    Alcotest.(check bool) "call answered" true answered;
    !got
  in
  (match call wa with
  | Some (Action.Procedure_output (Value.Int 7)) -> ()
  | r ->
    Alcotest.failf "tenant A should commit its own procedure, got %s"
      (match r with
      | Some r -> Format.asprintf "%a" Action.pp_response r
      | None -> "no response"))
  ;
  (match call wb with
  | Some Action.Aborted -> ()
  | r ->
    Alcotest.failf "tenant B must not see A's procedure, got %s"
      (match r with
      | Some r -> Format.asprintf "%a" Action.pp_response r
      | None -> "no response"));
  (match Replica.weak_query (World.replica wa 1) [ "mark" ] with
  | [ ("mark", Some (Value.Int 1)) ] -> ()
  | _ -> Alcotest.fail "tenant A replicas should hold mark=1");
  (match Replica.weak_query (World.replica wb 1) [ "mark" ] with
  | [ ("mark", None) ] -> ()
  | _ -> Alcotest.fail "tenant B database must be untouched");
  repcheck_ok mon_a;
  repcheck_ok mon_b

(* Runtime footprint validation end to end (paper §6): the guard rides
   every replica's procedure hook, so a declared footprint is checked
   against the actual key accesses of every replicated execution — and
   a declaration that lies about its key space is caught on each
   replica that applies the procedure. *)
let test_procedure_guard () =
  let w, mon = make_world ~seed:11 ~n:3 () in
  let guard = World.attach_procedure_guard w in
  run w ~ms:2_000.;
  (* Honest traffic against the builtins' declared footprints. *)
  World.submit_procedure w ~node:0 ~proc:"restock"
    [ Value.Text "beans"; Value.Int 4 ];
  World.submit_procedure w ~node:1 ~proc:"transfer"
    [ Value.Text "beans"; Value.Text "rice"; Value.Int 1 ];
  run w ~ms:3_000.;
  Alcotest.(check bool) "each replica's executions were checked" true
    (Check.Procguard.checked guard >= 6);
  Check.Procguard.assert_ok guard;
  (* A lying declaration: claims {param 0} but also writes a constant
     key.  Every replica that applies it must report the violation. *)
  List.iter
    (fun r ->
      Replica.register_procedure r "sneaky"
        ~footprint:
          { Procedure.reads = [ Procedure.Kparam 0 ];
            writes = [ Procedure.Kparam 0 ] }
        (fun _db args ->
          match args with
          | [ Value.Text k ] ->
            {
              Procedure.updates =
                [ Op.Set (k, Value.Int 1); Op.Set ("shadow", Value.Int 1) ];
              output = Value.Int 1;
            }
          | _ -> { Procedure.updates = []; output = Value.Int 0 }))
    (World.replicas w);
  World.submit_procedure w ~node:2 ~proc:"sneaky" [ Value.Text "front" ];
  run w ~ms:3_000.;
  (match Check.Procguard.violations guard with
  | [] -> Alcotest.fail "undeclared write must be caught"
  | vs ->
    Alcotest.(check bool) "every replica reports it" true (List.length vs >= 3);
    List.iter
      (fun v ->
        Alcotest.(check string) "procedure" "sneaky" v.Check.Procguard.v_proc;
        Alcotest.(check string) "offending key" "shadow" v.Check.Procguard.v_key;
        Alcotest.(check bool) "kind is write" true
          (v.Check.Procguard.v_kind = Check.Procguard.Write))
      vs);
  repcheck_ok mon

let () =
  Alcotest.run "integration"
    [
      ( "membership-corners",
        [
          Alcotest.test_case "partition during construct" `Slow
            test_partition_during_construct;
          Alcotest.test_case "crash while vulnerable" `Slow
            test_crash_while_vulnerable;
          Alcotest.test_case "total crash, staggered recovery" `Slow
            test_total_crash_staggered_recovery;
        ] );
      ( "dynamic-membership",
        [
          Alcotest.test_case "join via minority sponsor" `Slow
            test_join_via_minority_sponsor;
          Alcotest.test_case "sponsor crash mid-join" `Slow
            test_sponsor_crash_mid_join;
          Alcotest.test_case "chunked transfer resumes" `Slow
            test_chunked_transfer_resumes_across_sponsors;
          Alcotest.test_case "join, leave, partition" `Slow
            test_join_then_leave_then_partition;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "repeated partitions converge" `Slow
            test_repeated_partitions_converge;
          Alcotest.test_case "fifo per client" `Quick test_fifo_order_per_client;
          Alcotest.test_case "batch spans a checkpoint" `Quick
            test_batch_spans_checkpoint;
        ] );
      ( "multi-tenant",
        [
          Alcotest.test_case "two worlds, isolated procedures" `Quick
            test_two_tenants_isolated;
        ] );
      ( "procedures",
        [
          Alcotest.test_case "footprint guard end to end" `Quick
            test_procedure_guard;
        ] );
    ]
