(* End-to-end tests of the replication engine: primary installation,
   green ordering, partitions (primary and non-primary sides), merges
   and convergence, crash/recovery, dynamic join/leave, and the relaxed
   semantics of paper §6. *)

open Repro_sim
open Repro_net
open Repro_db
open Repro_core

let fast_lan =
  {
    Network.lan_100mbit with
    send_cpu_cost = Time.zero;
    recv_cpu_cost = Time.zero;
    recv_cpu_per_kb = Time.zero;
  }

(* A fast disk keeps scenario tests snappy; correctness is unaffected. *)
let fast_disk =
  {
    Repro_storage.Disk.default_forced with
    sync_latency = Time.of_ms 1.;
  }

type world = {
  cluster : Replica.cluster;
  replicas : (Node_id.t, Replica.t) Hashtbl.t;
}

let make_world ?(seed = 21) n =
  let nodes = List.init n Fun.id in
  let cluster =
    Replica.make_cluster ~net_config:fast_lan ~params:Repro_gcs.Params.fast
      ~seed ~nodes ()
  in
  let replicas = Hashtbl.create n in
  List.iter
    (fun node ->
      let r =
        Replica.create ~disk_config:fast_disk ~attach_cpu:false ~cluster ~node
          ~servers:nodes ()
      in
      Hashtbl.replace replicas node r)
    nodes;
  { cluster; replicas }

let rep w n = Hashtbl.find w.replicas n
let all_replicas w = Hashtbl.fold (fun _ r acc -> r :: acc) w.replicas []

let start_all w = List.iter Replica.start (all_replicas w)

let run_sim w ~ms =
  let sim = Replica.cluster_sim w.cluster in
  Repro_sim.Engine.run
    ~until:(Repro_sim.Time.add (Repro_sim.Engine.now sim) ~span:(Time.of_ms ms))
    sim

let topo w = Replica.cluster_topology w.cluster

let set_kv r key v ~on_response =
  Replica.submit r (Action.Update [ Op.Set (key, Value.Int v) ]) ~on_response

let set_kv' r key v = set_kv r key v ~on_response:(fun _ -> ())

let green_ids r =
  List.map (fun a -> a.Action.id) (Repro_core.Engine.green_actions (Replica.engine r))

let check_green_prefix_consistent name ra rb =
  let ga = green_ids ra and gb = green_ids rb in
  let rec prefix a b =
    match (a, b) with
    | [], _ | _, [] -> true
    | x :: a', y :: b' -> Action.Id.equal x y && prefix a' b'
  in
  Alcotest.(check bool)
    (name ^ ": green prefixes consistent")
    true (prefix ga gb)

let check_db_equal name ra rb =
  Alcotest.(check int)
    (name ^ ": databases converged")
    (Database.digest (Replica.database ra))
    (Database.digest (Replica.database rb))

let count_in_primary w =
  List.length (List.filter Replica.in_primary (all_replicas w))

(* ------------------------------------------------------------------ *)

let test_primary_installs () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d in primary" (Replica.node r))
        true (Replica.in_primary r))
    (all_replicas w)

let test_actions_turn_green_everywhere () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  let responses = ref 0 in
  for i = 1 to 10 do
    set_kv (rep w (i mod 3)) (Printf.sprintf "k%d" i) i ~on_response:(fun _ ->
        incr responses)
  done;
  run_sim w ~ms:500.;
  Alcotest.(check int) "all clients answered" 10 !responses;
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d green count" (Replica.node r))
        10
        (Repro_core.Engine.green_count (Replica.engine r)))
    (all_replicas w);
  check_green_prefix_consistent "steady" (rep w 0) (rep w 1);
  check_db_equal "steady" (rep w 0) (rep w 2)

let test_partition_majority_keeps_primary () =
  let w = make_world 5 in
  start_all w;
  run_sim w ~ms:800.;
  Topology.partition (topo w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  run_sim w ~ms:1500.;
  Alcotest.(check bool) "majority side in primary" true
    (Replica.in_primary (rep w 0) && Replica.in_primary (rep w 2));
  Alcotest.(check bool) "minority side out of primary" true
    ((not (Replica.in_primary (rep w 3))) && not (Replica.in_primary (rep w 4)));
  Alcotest.(check int) "exactly three in primary" 3 (count_in_primary w)

let test_minority_actions_stay_red () =
  let w = make_world 5 in
  start_all w;
  run_sim w ~ms:800.;
  Topology.partition (topo w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  run_sim w ~ms:1500.;
  let minority_answered = ref false in
  set_kv (rep w 3) "m" 1 ~on_response:(fun _ -> minority_answered := true);
  set_kv' (rep w 0) "p" 2;
  run_sim w ~ms:800.;
  Alcotest.(check bool) "minority update unanswered (strict)" false
    !minority_answered;
  Alcotest.(check bool) "red at minority" true
    (List.length (Repro_core.Engine.red_actions (Replica.engine (rep w 3))) >= 1);
  Alcotest.(check bool) "primary committed its action" true
    (Repro_core.Engine.green_count (Replica.engine (rep w 0)) >= 1);
  (* Merge: the red action is ordered and everyone converges. *)
  Topology.merge_all (topo w);
  run_sim w ~ms:2500.;
  Alcotest.(check bool) "minority answered after merge" true !minority_answered;
  check_db_equal "after merge" (rep w 0) (rep w 3);
  check_green_prefix_consistent "after merge" (rep w 2) (rep w 4)

let test_no_primary_without_quorum () =
  let w = make_world 4 in
  start_all w;
  run_sim w ~ms:800.;
  Topology.partition (topo w) [ [ 0; 1 ]; [ 2; 3 ] ];
  run_sim w ~ms:1500.;
  (* 2 of 4 with the tie-breaker (node 0) forms the primary; the other
     half must not. *)
  Alcotest.(check bool) "tie-breaker side wins" true
    (Replica.in_primary (rep w 0) && Replica.in_primary (rep w 1));
  Alcotest.(check bool) "other side blocked" true
    ((not (Replica.in_primary (rep w 2))) && not (Replica.in_primary (rep w 3)))

let test_cascaded_partitions_single_primary () =
  let w = make_world 5 in
  start_all w;
  run_sim w ~ms:800.;
  Topology.partition (topo w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  run_sim w ~ms:1200.;
  Topology.partition (topo w) [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ];
  run_sim w ~ms:1200.;
  (* {0,1} holds 2 of the last primary {0,1,2}: majority. *)
  Alcotest.(check bool) "cascaded majority holds primary" true
    (Replica.in_primary (rep w 0) && Replica.in_primary (rep w 1));
  Alcotest.(check int) "exactly two in primary" 2 (count_in_primary w);
  Topology.merge_all (topo w);
  run_sim w ~ms:2500.;
  Alcotest.(check int) "all five recover primary" 5 (count_in_primary w)

let test_crash_recover_rejoins () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  for i = 1 to 5 do
    set_kv' (rep w 0) (Printf.sprintf "k%d" i) i
  done;
  run_sim w ~ms:500.;
  Replica.crash (rep w 2);
  run_sim w ~ms:800.;
  Alcotest.(check bool) "survivors keep primary" true
    (Replica.in_primary (rep w 0) && Replica.in_primary (rep w 1));
  set_kv' (rep w 0) "after" 9;
  run_sim w ~ms:500.;
  Replica.recover (rep w 2);
  run_sim w ~ms:2000.;
  Alcotest.(check bool) "recovered back in primary" true
    (Replica.in_primary (rep w 2));
  check_db_equal "after recovery" (rep w 0) (rep w 2);
  check_green_prefix_consistent "after recovery" (rep w 1) (rep w 2)

let test_total_crash_blocks_until_full_exchange () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  set_kv' (rep w 0) "x" 1;
  run_sim w ~ms:500.;
  (* Everyone crashes. *)
  List.iter Replica.crash (all_replicas w);
  run_sim w ~ms:200.;
  (* All recover: after mutual exchange, the primary must re-form and the
     durable action must survive. *)
  List.iter Replica.recover (all_replicas w);
  run_sim w ~ms:2500.;
  Alcotest.(check int) "primary re-formed" 3 (count_in_primary w);
  check_db_equal "after total crash" (rep w 0) (rep w 1);
  Alcotest.(check bool) "action survived" true
    (Repro_core.Engine.green_count (Replica.engine (rep w 0)) >= 1)

let test_weak_and_dirty_queries () =
  let w = make_world 5 in
  start_all w;
  run_sim w ~ms:800.;
  set_kv' (rep w 0) "g" 1;
  run_sim w ~ms:500.;
  Topology.partition (topo w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  run_sim w ~ms:1500.;
  (* A minority update: red only. *)
  set_kv' (rep w 3) "g" 2;
  run_sim w ~ms:500.;
  (match Replica.weak_query (rep w 3) [ "g" ] with
  | [ ("g", Some (Value.Int 1)) ] -> ()
  | _ -> Alcotest.fail "weak query must serve the green (stale) state");
  match Replica.dirty_query (rep w 3) [ "g" ] with
  | [ ("g", Some (Value.Int 2)) ] -> ()
  | _ -> Alcotest.fail "dirty query must include red actions"

let test_commutative_semantics_respond_early () =
  let w = make_world 5 in
  start_all w;
  run_sim w ~ms:800.;
  Topology.partition (topo w) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  run_sim w ~ms:1500.;
  let answered = ref false in
  Replica.submit (rep w 3) ~semantics:Action.Commutative
    (Action.Update [ Op.Add ("stock", 5) ])
    ~on_response:(fun _ -> answered := true);
  run_sim w ~ms:500.;
  Alcotest.(check bool) "commutative answered in minority" true !answered;
  Topology.merge_all (topo w);
  run_sim w ~ms:2500.;
  check_db_equal "stock converged" (rep w 0) (rep w 3)

let test_join_new_replica () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  for i = 1 to 5 do
    set_kv' (rep w 0) (Printf.sprintf "k%d" i) i
  done;
  run_sim w ~ms:500.;
  (* A brand-new node 7 joins via sponsor 1. *)
  Topology.add_node (topo w) 7;
  let joiner =
    Replica.create_joiner ~disk_config:fast_disk ~attach_cpu:false
      ~cluster:w.cluster ~node:7 ~sponsors:[ 1 ] ()
  in
  Hashtbl.replace w.replicas 7 joiner;
  Replica.start joiner;
  run_sim w ~ms:3000.;
  Alcotest.(check bool) "joiner ready" true (Replica.is_ready joiner);
  Alcotest.(check bool) "joiner in primary" true (Replica.in_primary joiner);
  check_db_equal "joiner caught up" (rep w 0) joiner;
  (* The joiner now participates in ordering new actions. *)
  set_kv' joiner "from-joiner" 42;
  run_sim w ~ms:500.;
  check_db_equal "joiner action replicated" (rep w 2) joiner;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d knows joiner" (Replica.node r))
        true
        (Node_id.Set.mem 7 (Repro_core.Engine.known_servers (Replica.engine r))))
    (all_replicas w)

let test_leave_replica () =
  let w = make_world 4 in
  start_all w;
  run_sim w ~ms:800.;
  Replica.leave (rep w 3);
  run_sim w ~ms:2000.;
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d removed leaver" n)
        false
        (Node_id.Set.mem 3 (Repro_core.Engine.known_servers (Replica.engine (rep w n)))))
    [ 0; 1; 2 ];
  Alcotest.(check int) "survivors keep primary" 3 (count_in_primary w)

let test_interactive_conflict_aborts_everywhere () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  Replica.submit (rep w 0) (Action.Update [ Op.Set ("seat", Value.Text "free") ])
    ~on_response:(fun _ -> ());
  run_sim w ~ms:500.;
  (* Two clients读 the seat as free and race to book it. *)
  let book r ~on_response =
    Replica.submit r
      (Action.Interactive
         {
           expected = [ ("seat", Some (Value.Text "free")) ];
           updates = [ Op.Set ("seat", Value.Text "taken") ];
         })
      ~on_response
  in
  let outcomes = ref [] in
  book (rep w 1) ~on_response:(fun r -> outcomes := r :: !outcomes);
  book (rep w 2) ~on_response:(fun r -> outcomes := r :: !outcomes);
  run_sim w ~ms:500.;
  let committed =
    List.length
      (List.filter (function Action.Committed _ -> true | _ -> false) !outcomes)
  and aborted =
    List.length
      (List.filter (function Action.Aborted -> true | _ -> false) !outcomes)
  in
  Alcotest.(check int) "exactly one commits" 1 committed;
  Alcotest.(check int) "exactly one aborts" 1 aborted;
  check_db_equal "seats agree" (rep w 0) (rep w 2)

(* --- weighted quorums, local queries, stats ------------------------- *)

let test_weighted_quorum_heavy_node_wins () =
  (* Node 2 carries weight 3 against two weight-1 peers: alone it holds a
     majority of the total 5 and keeps the primary on its side. *)
  let nodes = [ 0; 1; 2 ] in
  let cluster =
    Replica.make_cluster ~net_config:fast_lan ~params:Repro_gcs.Params.fast
      ~seed:61 ~nodes ()
  in
  let weights = Node_id.Map.add 2 3 Node_id.Map.empty in
  let replicas =
    List.map
      (fun node ->
        let r =
          Replica.create ~disk_config:fast_disk ~attach_cpu:false ~weights
            ~cluster ~node ~servers:nodes ()
        in
        Replica.start r;
        (node, r))
      nodes
  in
  let sim = Replica.cluster_sim cluster in
  Repro_sim.Engine.run ~until:(Time.of_ms 800.) sim;
  Topology.partition (Replica.cluster_topology cluster) [ [ 0; 1 ]; [ 2 ] ];
  Repro_sim.Engine.run ~until:(Time.of_ms 2300.) sim;
  Alcotest.(check bool) "heavy singleton keeps primary" true
    (Replica.in_primary (List.assoc 2 replicas));
  Alcotest.(check bool) "light pair blocked" false
    (Replica.in_primary (List.assoc 0 replicas)
    || Replica.in_primary (List.assoc 1 replicas))

let test_local_query_session_consistency () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  (* Submit an update, then immediately a local query through the same
     replica: the query must wait for the update and see its effect —
     without being globally ordered itself. *)
  set_kv' (rep w 0) "session" 7;
  let result = ref None in
  Replica.local_query (rep w 0) [ "session" ] ~on_response:(fun r ->
      result := Some r);
  Alcotest.(check bool) "query waits for the pending update" true (!result = None);
  run_sim w ~ms:500.;
  (match !result with
  | Some [ ("session", Some (Value.Int 7)) ] -> ()
  | _ -> Alcotest.fail "local query must observe the session's own write");
  (* With no pending actions the answer is immediate. *)
  let immediate = ref None in
  Replica.local_query (rep w 1) [ "session" ] ~on_response:(fun r ->
      immediate := Some r);
  Alcotest.(check bool) "immediate when drained" true (!immediate <> None)

let test_engine_stats_track_membership () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  let s0 = Repro_core.Engine.stats (Replica.engine (rep w 0)) in
  let installs_before = s0.Repro_core.Engine.s_installs in
  Topology.partition (topo w) [ [ 0; 1 ]; [ 2 ] ];
  run_sim w ~ms:1200.;
  Topology.merge_all (topo w);
  run_sim w ~ms:2000.;
  Alcotest.(check bool) "exchanges counted" true
    (s0.Repro_core.Engine.s_exchanges >= 2);
  Alcotest.(check bool) "installs counted" true
    (s0.Repro_core.Engine.s_installs > installs_before)

(* --- checkpoints and garbage collection ----------------------------- *)

let test_checkpoint_compacts_log () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  for i = 1 to 30 do
    set_kv' (rep w (i mod 3)) (Printf.sprintf "k%d" i) i
  done;
  run_sim w ~ms:1000.;
  let before = Replica.log_entries (rep w 0) in
  Replica.checkpoint_now (rep w 0);
  run_sim w ~ms:500.;
  let after = Replica.log_entries (rep w 0) in
  Alcotest.(check bool)
    (Printf.sprintf "log compacted (%d -> %d)" before after)
    true (after < before);
  (* Crash and recover from the checkpoint: same state as peers. *)
  Replica.crash (rep w 0);
  run_sim w ~ms:800.;
  Replica.recover (rep w 0);
  run_sim w ~ms:2000.;
  check_db_equal "recovered from checkpoint" (rep w 0) (rep w 1);
  Alcotest.(check int) "green count preserved" 30
    (Repro_core.Engine.green_count (Replica.engine (rep w 0)))

let test_joiner_crash_recovers_inherited_state () =
  let w = make_world 3 in
  start_all w;
  run_sim w ~ms:800.;
  for i = 1 to 10 do
    set_kv' (rep w 0) (Printf.sprintf "k%d" i) i
  done;
  run_sim w ~ms:500.;
  Topology.add_node (topo w) 7;
  let joiner =
    Replica.create_joiner ~disk_config:fast_disk ~attach_cpu:false
      ~cluster:w.cluster ~node:7 ~sponsors:[ 1 ] ()
  in
  Hashtbl.replace w.replicas 7 joiner;
  Replica.start joiner;
  run_sim w ~ms:3000.;
  Alcotest.(check bool) "joined" true (Replica.is_ready joiner);
  (* The joiner's database came by snapshot, not by actions: a crash must
     not lose the inherited prefix. *)
  Replica.crash joiner;
  run_sim w ~ms:800.;
  Replica.recover joiner;
  run_sim w ~ms:2500.;
  Alcotest.(check bool) "re-joined" true (Replica.is_ready joiner);
  check_db_equal "inherited state survived the crash" (rep w 0) joiner

let test_gc_respects_laggards () =
  (* White-action GC must never discard bodies a detached replica still
     needs: the white line is the minimum green count over *known*
     servers, including unreachable ones. *)
  let w = make_world ~seed:29 3 in
  start_all w;
  run_sim w ~ms:800.;
  Topology.partition (topo w) [ [ 0; 1 ]; [ 2 ] ];
  run_sim w ~ms:1200.;
  for i = 1 to 40 do
    set_kv' (rep w (i mod 2)) (Printf.sprintf "k%d" i) i
  done;
  run_sim w ~ms:1000.;
  (* Aggressive checkpointing while replica 2 is away. *)
  Replica.checkpoint_now (rep w 0);
  Replica.checkpoint_now (rep w 1);
  run_sim w ~ms:500.;
  Topology.merge_all (topo w);
  run_sim w ~ms:3000.;
  check_db_equal "laggard caught up despite GC" (rep w 0) (rep w 2);
  Alcotest.(check int) "all actions reached the laggard" 40
    (Repro_core.Engine.green_count (Replica.engine (rep w 2)))

let test_periodic_checkpoint_bounds_log () =
  let nodes = [ 0; 1; 2 ] in
  let cluster =
    Replica.make_cluster ~net_config:fast_lan ~params:Repro_gcs.Params.fast
      ~seed:31 ~nodes ()
  in
  let replicas =
    List.map
      (fun node ->
        let r =
          Replica.create ~disk_config:fast_disk ~attach_cpu:false
            ~checkpoint_every:(Some 20) ~cluster ~node ~servers:nodes ()
        in
        Replica.start r;
        (node, r))
      nodes
  in
  let sim = Replica.cluster_sim cluster in
  Repro_sim.Engine.run ~until:(Time.of_ms 800.) sim;
  for i = 1 to 100 do
    Replica.submit
      (List.assoc (i mod 3) replicas)
      (Action.Update [ Op.Set ("x", Value.Int i) ])
      ~on_response:(fun _ -> ())
  done;
  Repro_sim.Engine.run ~until:(Time.of_sec 3.) sim;
  (* 100 actions logged at ~2 entries each; periodic checkpoints keep the
     log near one checkpoint interval. *)
  Alcotest.(check bool) "log stays bounded" true
    (Replica.log_entries (List.assoc 0 replicas) < 120)

(* --- persistence and knowledge properties --------------------------- *)

let make_persist () =
  let sim = Repro_sim.Engine.create () in
  let disk =
    Repro_storage.Disk.create ~engine:sim
      ~config:{ Repro_storage.Disk.default_forced with sync_latency = Time.of_ms 1. }
      ()
  in
  (sim, Persist.create ~engine:sim ~disk ())

let test_persist_torn_batch_fifo_gap_free () =
  (* A delivery burst logged as one multi-record frame must be lost or
     kept as a unit: a crash that tears the in-flight frame may not
     leave a creator's FIFO with a gap (say, index 3 salvaged while
     index 2 died with the frame). *)
  let sim = Repro_sim.Engine.create () in
  let disk =
    Repro_storage.Disk.create ~engine:sim
      ~config:
        {
          Repro_storage.Disk.default_forced with
          sync_latency = Time.of_ms 1.;
          sync_jitter = 0.;
          faults =
            { Repro_storage.Disk.no_faults with torn_tail_on_crash = 1.0 };
        }
      ()
  in
  let persist = Persist.create ~engine:sim ~disk () in
  let a cr i = Action.make ~server:cr ~index:i (Action.Update []) in
  Persist.log_red persist (a 1 1);
  Persist.log_red persist (a 2 1);
  Persist.sync persist ignore;
  Repro_sim.Engine.run sim;
  (* One in-flight burst frame carrying creator 1's next two actions. *)
  Persist.log_red_batch persist [ a 1 2; a 1 3 ];
  Persist.crash persist;
  let r = Persist.recover ~self:0 persist in
  (match r.Persist.r_verdict with
  | Persist.V_torn_tail n ->
    Alcotest.(check int) "the whole frame was truncated" 2 n
  | v ->
    Alcotest.failf "expected a torn tail, got %a" Persist.pp_verdict v);
  Alcotest.(check (list (pair int int)))
    "durable reds survive in arrival order, no partial batch"
    [ (1, 1); (2, 1) ]
    (List.map
       (fun act ->
         (act.Action.id.Action.Id.server, act.Action.id.Action.Id.index))
       r.Persist.r_red);
  List.iter
    (fun (creator, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "creator %d red cut is gap-free" creator)
        expected
        (Option.value ~default:0
           (Node_id.Map.find_opt creator r.Persist.r_red_cut)))
    [ (1, 1); (2, 1) ]

let prop_persist_recovery_invariants =
  (* Random interleavings of ongoing/red/green logging from 3 creators:
     recovery must produce a contiguous red cut per creator, greens in
     logged order, and own ongoing actions above the red cut. *)
  QCheck.Test.make ~name:"recovery invariants over random logs" ~count:100
    QCheck.(list (pair (int_bound 2) bool))
    (fun script ->
      let sim, persist = make_persist () in
      let next = Array.make 3 0 in
      let logged_green = ref [] in
      List.iter
        (fun (creator, also_green) ->
          next.(creator) <- next.(creator) + 1;
          let a =
            Action.make ~server:creator ~index:next.(creator) (Action.Update [])
          in
          if creator = 0 then Persist.log_ongoing persist a;
          Persist.log_red persist a;
          if also_green then begin
            Persist.log_green persist a.Action.id;
            logged_green := a.Action.id :: !logged_green
          end)
        script;
      Persist.sync persist ignore;
      Repro_sim.Engine.run sim;
      let r = Persist.recover ~self:0 persist in
      let greens = List.map (fun a -> a.Action.id) r.Persist.r_green in
      let cut_ok =
        List.for_all
          (fun c ->
            match Node_id.Map.find_opt c r.Persist.r_red_cut with
            | Some cut -> cut = next.(c)
            | None -> next.(c) = 0)
          [ 0; 1; 2 ]
      in
      let greens_ok = greens = List.rev !logged_green in
      let ongoing_ok =
        List.for_all
          (fun a -> a.Action.id.Action.Id.index > next.(0))
          r.Persist.r_ongoing
        (* every own action was logged red, so none is still ongoing *)
        && r.Persist.r_ongoing = []
      in
      cut_ok && greens_ok && ongoing_ok)

let mk_state ~server ~green ~floor ~cuts =
  {
    Types.sm_server = server;
    sm_conf = { Repro_gcs.Conf_id.coord = 0; counter = 1 };
    sm_red_cut =
      List.fold_left
        (fun m (c, i) -> Node_id.Map.add c i m)
        Node_id.Map.empty cuts;
    sm_green_count = green;
    sm_green_line = None;
    sm_green_floor = floor;
    sm_attempt = 0;
    sm_prim = Types.initial_prim ~servers:(Node_id.set_of_list [ 0; 1; 2 ]);
    sm_vulnerable = Types.invalid_vulnerable;
    sm_yellow = Types.invalid_yellow;
  }

(* ComputeKnowledge at exchange scale: 200 members, each advertising a
   different yellow prefix, green count and red cut.  Checks the
   intersection (reference order preserved, shortest prefix survives),
   the green span and plan, and the per-creator red target — the
   whole-group path the intersection/array rework optimizes. *)
let test_knowledge_exchange_200_members () =
  let n = 200 in
  let ids = List.init n Fun.id in
  let members = Node_id.set_of_list ids in
  let prim = Types.initial_prim ~servers:members in
  let yellow_ids len =
    List.init len (fun i -> { Action.Id.server = 0; index = i + 1 })
  in
  let states =
    List.fold_left
      (fun m s ->
        let sm =
          {
            Types.sm_server = s;
            sm_conf = { Repro_gcs.Conf_id.coord = 0; counter = 1 };
            sm_red_cut = Node_id.Map.singleton 0 (50 + (s mod 3));
            sm_green_count = 100 + (s mod 7);
            sm_green_line = None;
            sm_green_floor = 0;
            sm_attempt = s mod 4;
            sm_prim = prim;
            sm_vulnerable = Types.invalid_vulnerable;
            sm_yellow =
              { Types.y_valid = true; y_set = yellow_ids (10 + (s mod 5)) };
          }
        in
        Node_id.Map.add s sm m)
      Node_id.Map.empty ids
  in
  let k = Knowledge.compute ~members states in
  Alcotest.(check int) "attempt is the group max" 3 k.Knowledge.k_attempt;
  Alcotest.(check int) "green target is the max count" 106
    k.Knowledge.k_green_target;
  Alcotest.(check bool) "yellow knowledge is valid" true
    k.Knowledge.k_yellow.Types.y_valid;
  Alcotest.(check bool) "yellow intersection keeps the reference prefix" true
    (k.Knowledge.k_yellow.Types.y_set = yellow_ids 10);
  Alcotest.(check bool) "red target is the max advertised cut" true
    (Node_id.Map.find_opt 0 k.Knowledge.k_red_targets = Some 52);
  let covered =
    List.fold_left
      (fun acc (_, from_pos, to_pos) -> if from_pos = acc then to_pos else acc)
      100 k.Knowledge.k_green_plan
  in
  Alcotest.(check int) "green plan covers (min, max]" 106 covered

let prop_knowledge_green_plan_covers =
  (* Whenever some member with floor 0 holds the maximum green count, the
     plan must cover exactly (min, max]. *)
  QCheck.Test.make ~name:"green plan covers the span" ~count:200
    QCheck.(pair (int_bound 50) (int_bound 50))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let states =
        [ (0, mk_state ~server:0 ~green:hi ~floor:0 ~cuts:[]);
          (1, mk_state ~server:1 ~green:lo ~floor:0 ~cuts:[]);
          (2, mk_state ~server:2 ~green:hi ~floor:hi ~cuts:[]) ]
        |> List.fold_left
             (fun m (n, sm) -> Node_id.Map.add n sm m)
             Node_id.Map.empty
      in
      let k =
        Knowledge.compute ~members:(Node_id.set_of_list [ 0; 1; 2 ]) states
      in
      let covered =
        List.fold_left
          (fun acc (_, from_pos, to_pos) ->
            if from_pos = acc then to_pos else acc)
          lo k.Knowledge.k_green_plan
      in
      covered = hi && k.Knowledge.k_green_target = hi)

let prop_knowledge_red_duties_cover =
  QCheck.Test.make ~name:"red duties cover every target" ~count:200
    QCheck.(list_of_size Gen.(return 3) (int_bound 20))
    (fun cuts ->
      match cuts with
      | [ c0; c1; c2 ] ->
        let state n own =
          mk_state ~server:n ~green:0 ~floor:0 ~cuts:[ (9, own) ]
        in
        let states =
          List.fold_left
            (fun m (n, sm) -> Node_id.Map.add n sm m)
            Node_id.Map.empty
            [ (0, state 0 c0); (1, state 1 c1); (2, state 2 c2) ]
        in
        let members = Node_id.set_of_list [ 0; 1; 2 ] in
        let k = Knowledge.compute ~members states in
        let all_duties =
          List.concat_map
            (fun self -> Knowledge.red_duties ~self ~knowledge:k ~states)
            [ 0; 1; 2 ]
        in
        let target = max c0 (max c1 c2) and low = min c0 (min c1 c2) in
        if target = low then all_duties = []
        else (
          match all_duties with
          | [ (9, d_low, d_high) ] -> d_low = low && d_high = target
          | _ -> false)
      | _ -> QCheck.assume_fail ())

(* --- unit tests of the pure pieces -------------------------------- *)

let test_quorum_majority () =
  let open Quorum in
  let set = Node_id.set_of_list in
  let prev = set [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check bool) "3 of 5" true (has_majority ~prev (set [ 0; 1; 2 ]));
  Alcotest.(check bool) "2 of 5" false (has_majority ~prev (set [ 3; 4 ]));
  Alcotest.(check bool) "tie with breaker" true
    (has_majority ~prev:(set [ 0; 1; 2; 3 ]) (set [ 0; 1 ]));
  Alcotest.(check bool) "tie without breaker" false
    (has_majority ~prev:(set [ 0; 1; 2; 3 ]) (set [ 2; 3 ]));
  Alcotest.(check bool) "vulnerable blocks" false
    (is_quorum ~prev ~vulnerable_present:true (set [ 0; 1; 2; 3; 4 ]))

let test_quorum_policies () =
  let set = Node_id.set_of_list in
  let all = set [ 0; 1; 2; 3; 4 ] in
  let prev = set [ 0; 1; 2 ] in
  (* {0,1} is a majority of the last primary but not of the full set. *)
  Alcotest.(check bool) "dlv adapts to the last primary" true
    (Quorum.policy_quorum Quorum.Dynamic_linear ~prev ~all
       ~vulnerable_present:false (set [ 0; 1 ]));
  Alcotest.(check bool) "static majority refuses" false
    (Quorum.policy_quorum Quorum.Static_majority ~prev ~all
       ~vulnerable_present:false (set [ 0; 1 ]));
  Alcotest.(check bool) "static majority accepts 3 of 5" true
    (Quorum.policy_quorum Quorum.Static_majority ~prev ~all
       ~vulnerable_present:false (set [ 2; 3; 4 ]));
  Alcotest.(check bool) "dlv refuses non-prim members" false
    (Quorum.policy_quorum Quorum.Dynamic_linear ~prev ~all
       ~vulnerable_present:false (set [ 3; 4 ]));
  Alcotest.(check bool) "vulnerability blocks both" false
    (Quorum.policy_quorum Quorum.Static_majority ~prev ~all
       ~vulnerable_present:true all)

let test_quorum_weight_ties () =
  let set = Node_id.set_of_list in
  let w l =
    List.fold_left
      (fun m (n, x) -> Node_id.Map.add n x m)
      Quorum.no_weights l
  in
  (* Exactly half the weight qualifies only with the tie-breaker — the
     heaviest member of the previous primary, lowest id among equals. *)
  let prev = set [ 0; 1; 2 ] in
  let weights = w [ (0, 2) ] (* total 4: 0 weighs 2, others 1 *) in
  Alcotest.(check bool) "half without the heavy tie-breaker" false
    (Quorum.has_majority ~weights ~prev (set [ 1; 2 ]));
  Alcotest.(check bool) "half with the heavy tie-breaker" true
    (Quorum.has_majority ~weights ~prev (set [ 0 ]));
  (* All weights equal: the tie-breaker falls to the lowest id. *)
  let even = w [ (0, 3); (1, 3); (2, 3); (3, 3) ] in
  let prev4 = set [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "equal-weight tie with node 0" true
    (Quorum.has_majority ~weights:even ~prev:prev4 (set [ 0; 1 ]));
  Alcotest.(check bool) "equal-weight tie without node 0" false
    (Quorum.has_majority ~weights:even ~prev:prev4 (set [ 2; 3 ]));
  (* A single heavy node can dominate the vote outright. *)
  let heavy = w [ (0, 5) ] in
  Alcotest.(check bool) "heavy singleton outweighs the rest" true
    (Quorum.has_majority ~weights:heavy ~prev (set [ 0 ]));
  Alcotest.(check bool) "light pair loses to the heavy node" false
    (Quorum.has_majority ~weights:heavy ~prev (set [ 1; 2 ]))

let test_quorum_empty_prev () =
  let set = Node_id.set_of_list in
  let empty = Node_id.Set.empty in
  (* An empty last-primary membership grants no quorum to anyone: the
     candidate must wait for knowledge of the real last primary. *)
  Alcotest.(check bool) "no majority of nothing" false
    (Quorum.has_majority ~prev:empty (set [ 0; 1; 2 ]));
  Alcotest.(check bool) "not even the empty set" false
    (Quorum.has_majority ~prev:empty empty);
  Alcotest.(check bool) "IsQuorum refuses too" false
    (Quorum.is_quorum ~prev:empty ~vulnerable_present:false (set [ 0; 1 ]));
  Alcotest.(check bool) "both policies refuse" false
    (Quorum.policy_quorum Quorum.Dynamic_linear ~prev:empty ~all:empty
       ~vulnerable_present:false (set [ 0 ])
    || Quorum.policy_quorum Quorum.Static_majority ~prev:empty ~all:empty
         ~vulnerable_present:false (set [ 0 ]))

(* The vulnerable record through ComputeKnowledge (paper A.7 steps 3-4):
   when is a proposed member still an obstacle to a quorum? *)
let test_knowledge_vulnerable_invalidation () =
  let set = Node_id.set_of_list in
  let members = set [ 0; 1; 2 ] in
  let vuln ~bits ~vset ~attempt =
    {
      Types.v_valid = true;
      v_prim_index = 0;
      v_attempt = attempt;
      v_set = set vset;
      v_bits = set bits;
    }
  in
  let states l =
    List.fold_left
      (fun m (n, sm) -> Node_id.Map.add n sm m)
      Node_id.Map.empty l
  in
  let base n = mk_state ~server:n ~green:0 ~floor:0 ~cuts:[] in
  let with_vuln n v = { (base n) with Types.sm_vulnerable = v } in
  let valid_members k =
    Node_id.Map.fold
      (fun n v acc -> if v.Types.v_valid then n :: acc else acc)
      k.Knowledge.k_vulnerable []
    |> List.rev
  in
  (* Step 4: the union of safe-delivery bits covers the whole attempt
     set — the outcome is durably known, vulnerability clears. *)
  let k =
    Knowledge.compute ~members
      (states
         [
           (0, with_vuln 0 (vuln ~bits:[ 0 ] ~vset:[ 0; 1; 2 ] ~attempt:1));
           (1, with_vuln 1 (vuln ~bits:[ 1 ] ~vset:[ 0; 1; 2 ] ~attempt:1));
           (2, with_vuln 2 (vuln ~bits:[ 2 ] ~vset:[ 0; 1; 2 ] ~attempt:1));
         ])
  in
  Alcotest.(check (list int)) "united bits clear every record" []
    (valid_members k);
  (* Bits short of the set: the proposed members stay vulnerable, and a
     component containing them must be refused. *)
  let k =
    Knowledge.compute ~members
      (states
         [
           (0, with_vuln 0 (vuln ~bits:[ 0 ] ~vset:[ 0; 1; 9 ] ~attempt:1));
           (1, with_vuln 1 (vuln ~bits:[ 1 ] ~vset:[ 0; 1; 9 ] ~attempt:1));
           (2, base 2);
         ])
  in
  Alcotest.(check (list int)) "absent participant keeps them vulnerable"
    [ 0; 1 ] (valid_members k);
  Alcotest.(check bool) "no quorum over a vulnerable member" false
    (Quorum.is_quorum ~prev:members ~vulnerable_present:true members);
  (* Step 3, contradiction: a member of the attempt set reports a
     different (or no) attempt — the attempt cannot have installed
     anywhere, the record clears. *)
  let k =
    Knowledge.compute ~members
      (states
         [
           (0, with_vuln 0 (vuln ~bits:[] ~vset:[ 0; 2 ] ~attempt:1));
           (1, base 1);
           (2, base 2);
         ])
  in
  Alcotest.(check (list int)) "contradicted attempt clears" []
    (valid_members k);
  (* Step 3, membership: a vulnerable server outside the maximal known
     primary component cannot matter to its quorum. *)
  let outside_prim n v =
    {
      (with_vuln n v) with
      Types.sm_prim =
        { (Types.initial_prim ~servers:members) with
          Types.prim_servers = set [ 1; 2 ]
        };
    }
  in
  let k =
    Knowledge.compute ~members
      (states
         [
           (0, outside_prim 0 (vuln ~bits:[] ~vset:[ 0; 9 ] ~attempt:1));
           (1, outside_prim 1 Types.invalid_vulnerable);
           (2, outside_prim 2 Types.invalid_vulnerable);
         ])
  in
  Alcotest.(check (list int)) "outside the primary clears" []
    (valid_members k)

let prop_quorum_unique =
  QCheck.Test.make ~name:"two disjoint components never both quorate" ~count:300
    QCheck.(pair (list_of_size Gen.(return 5) (int_bound 1)) unit)
    (fun (mask, ()) ->
      let prev = Node_id.set_of_list [ 0; 1; 2; 3; 4 ] in
      let left =
        Node_id.set_of_list
          (List.filteri (fun i _ -> List.nth mask i = 0) [ 0; 1; 2; 3; 4 ])
      in
      let right = Node_id.Set.diff prev left in
      not
        (Quorum.has_majority ~prev left && Quorum.has_majority ~prev right))

let test_action_queue_basics () =
  let q = Action_queue.create () in
  let a i = Action.make ~server:0 ~index:i (Action.Update []) in
  Action_queue.add_red q (a 1);
  Action_queue.add_red q (a 2);
  Alcotest.(check int) "two red" 2 (Action_queue.red_count q);
  let pos = Action_queue.append_green q (a 1) in
  Alcotest.(check int) "first green position" 1 pos;
  Alcotest.(check int) "red shrank" 1 (Action_queue.red_count q);
  Alcotest.(check bool) "is green" true
    (Action_queue.is_green q { Action.Id.server = 0; index = 1 });
  Alcotest.(check int) "green count" 1 (Action_queue.green_count q);
  (match Action_queue.green_line q with
  | Some id -> Alcotest.(check bool) "green line" true (id.Action.Id.index = 1)
  | None -> Alcotest.fail "no green line")

let test_action_queue_discard () =
  let q = Action_queue.create () in
  let a i = Action.make ~server:0 ~index:i (Action.Update []) in
  for i = 1 to 10 do
    ignore (Action_queue.append_green q (a i))
  done;
  let dropped = Action_queue.discard_below q 6 in
  Alcotest.(check int) "six bodies dropped" 6 dropped;
  Alcotest.(check int) "count unchanged" 10 (Action_queue.green_count q);
  Alcotest.(check int) "floor raised" 6 (Action_queue.green_floor q);
  Alcotest.(check bool) "greenness preserved" true
    (Action_queue.is_green q { Action.Id.server = 0; index = 3 });
  Alcotest.(check (option int)) "body gone" None
    (Option.map (fun _ -> 0) (Action_queue.find q { Action.Id.server = 0; index = 3 }));
  Alcotest.(check int) "bodies above floor remain" 7
    (Action_queue.nth_green q 7).Action.id.Action.Id.index;
  Alcotest.(check int) "idempotent below floor" 0 (Action_queue.discard_below q 4)

let test_action_queue_floor () =
  let q = Action_queue.create () in
  Action_queue.set_join_floor q ~count:10
    ~line:(Some { Action.Id.server = 3; index = 4 });
  Alcotest.(check int) "floor count" 10 (Action_queue.green_count q);
  let a = Action.make ~server:1 ~index:1 (Action.Update []) in
  let pos = Action_queue.append_green q a in
  Alcotest.(check int) "continues above floor" 11 pos;
  Alcotest.(check int) "nth above floor ok" 1
    (Action_queue.nth_green q 11).Action.id.Action.Id.index

let () =
  Alcotest.run "core"
    [
      ( "steady-state",
        [
          Alcotest.test_case "primary installs" `Quick test_primary_installs;
          Alcotest.test_case "actions green everywhere" `Quick
            test_actions_turn_green_everywhere;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "majority keeps primary" `Quick
            test_partition_majority_keeps_primary;
          Alcotest.test_case "minority stays red, merge converges" `Quick
            test_minority_actions_stay_red;
          Alcotest.test_case "no primary without quorum" `Quick
            test_no_primary_without_quorum;
          Alcotest.test_case "cascaded partitions" `Quick
            test_cascaded_partitions_single_primary;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "crash and recover" `Quick test_crash_recover_rejoins;
          Alcotest.test_case "total crash" `Quick
            test_total_crash_blocks_until_full_exchange;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "weak and dirty queries" `Quick
            test_weak_and_dirty_queries;
          Alcotest.test_case "commutative responds early" `Quick
            test_commutative_semantics_respond_early;
          Alcotest.test_case "interactive conflict aborts once" `Quick
            test_interactive_conflict_aborts_everywhere;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "join new replica" `Quick test_join_new_replica;
          Alcotest.test_case "leave replica" `Quick test_leave_replica;
        ] );
      ( "features",
        [
          Alcotest.test_case "weighted quorum" `Quick
            test_weighted_quorum_heavy_node_wins;
          Alcotest.test_case "local query session consistency" `Quick
            test_local_query_session_consistency;
          Alcotest.test_case "engine stats" `Quick test_engine_stats_track_membership;
        ] );
      ( "durability",
        [
          Alcotest.test_case "checkpoint compacts the log" `Quick
            test_checkpoint_compacts_log;
          Alcotest.test_case "joiner crash keeps inherited state" `Quick
            test_joiner_crash_recovers_inherited_state;
          Alcotest.test_case "gc respects laggards" `Quick test_gc_respects_laggards;
          Alcotest.test_case "periodic checkpoints bound the log" `Quick
            test_periodic_checkpoint_bounds_log;
        ] );
      ( "units",
        [
          Alcotest.test_case "quorum majority" `Quick test_quorum_majority;
          Alcotest.test_case "quorum policies" `Quick test_quorum_policies;
          Alcotest.test_case "quorum weight ties" `Quick test_quorum_weight_ties;
          Alcotest.test_case "quorum of empty last primary" `Quick
            test_quorum_empty_prev;
          Alcotest.test_case "vulnerable invalidation (A.7 steps 3-4)" `Quick
            test_knowledge_vulnerable_invalidation;
          QCheck_alcotest.to_alcotest prop_quorum_unique;
          Alcotest.test_case "action queue basics" `Quick test_action_queue_basics;
          Alcotest.test_case "action queue floor" `Quick test_action_queue_floor;
          Alcotest.test_case "action queue discard" `Quick test_action_queue_discard;
          Alcotest.test_case "torn batch keeps FIFO gap-free" `Quick
            test_persist_torn_batch_fifo_gap_free;
          QCheck_alcotest.to_alcotest prop_persist_recovery_invariants;
          Alcotest.test_case "knowledge exchange at 200 members" `Quick
            test_knowledge_exchange_200_members;
          QCheck_alcotest.to_alcotest prop_knowledge_green_plan_covers;
          QCheck_alcotest.to_alcotest prop_knowledge_red_duties_cover;
        ] );
    ]
